package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"sort"
)

const (
	snapMagic   = "PCERTSNP"
	snapVersion = 1
	// snapHeaderSize is magic + uint32 version + uint32 body length.
	snapHeaderSize = len(snapMagic) + 8
	// maxSnapshotBytes bounds a snapshot body against corrupt length
	// fields (generous: a 1M-node assignment fits comfortably).
	maxSnapshotBytes = 1 << 30
	// maxStringBytes bounds the embedded strings (names, scheme names).
	maxStringBytes = 1 << 16
)

// NodeCert is one node's certificate inside a snapshot.
type NodeCert struct {
	// ID is the node identifier.
	ID int64
	// Bits is the exact certificate length in bits.
	Bits int64
	// Data is the certificate bitstream, padded to whole bytes.
	Data []byte
}

// Snapshot is the restorable state of one certification session. It is
// keyed by the 128-bit topology fingerprint maintained incrementally by
// the dynamic layer: recovery recomputes the fingerprint of the decoded
// graph and rejects a snapshot whose key disagrees, independently of
// the CRC.
type Snapshot struct {
	// Name is the session name (planarcertd's registry key).
	Name string
	// Scheme is the scheme requested at session creation.
	Scheme string
	// ActiveScheme is the scheme certifying the graph at snapshot time
	// (differs from Scheme after a planarity flip).
	ActiveScheme string
	// Generation is the session generation at snapshot time.
	Generation uint64
	// Seq is the WAL sequence number this snapshot covers: replay
	// applies only records with a larger sequence.
	Seq uint64
	// FingerprintHi and FingerprintLo are the 128-bit topology
	// fingerprint of the node/edge sets below.
	FingerprintHi, FingerprintLo uint64
	// RepairThreshold, CacheSize and NoFlip restore the session options.
	RepairThreshold int64
	CacheSize       int64
	NoFlip          bool
	// Nodes lists every node identifier (including isolated nodes).
	Nodes []int64
	// Edges lists every undirected edge as an identifier pair.
	Edges [][2]int64
	// Certs is the certificate assignment (empty when the session was
	// uncertified at snapshot time).
	Certs []NodeCert
}

func appendString(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

// EncodeSnapshot renders the frozen snapshot format (header, body,
// trailing CRC32 of the body). Certificates are sorted by node
// identifier so encoding is deterministic.
func EncodeSnapshot(s *Snapshot) []byte {
	certs := make([]NodeCert, len(s.Certs))
	copy(certs, s.Certs)
	sort.Slice(certs, func(i, j int) bool { return certs[i].ID < certs[j].ID })

	body := make([]byte, 0, 64+len(s.Nodes)*2+len(s.Edges)*4+len(certs)*8)
	body = appendString(body, s.Name)
	body = appendString(body, s.Scheme)
	body = appendString(body, s.ActiveScheme)
	body = binary.LittleEndian.AppendUint64(body, s.Generation)
	body = binary.LittleEndian.AppendUint64(body, s.Seq)
	body = binary.LittleEndian.AppendUint64(body, s.FingerprintHi)
	body = binary.LittleEndian.AppendUint64(body, s.FingerprintLo)
	body = binary.AppendVarint(body, s.RepairThreshold)
	body = binary.AppendVarint(body, s.CacheSize)
	if s.NoFlip {
		body = append(body, 1)
	} else {
		body = append(body, 0)
	}
	body = binary.AppendUvarint(body, uint64(len(s.Nodes)))
	for _, id := range s.Nodes {
		body = binary.AppendVarint(body, id)
	}
	body = binary.AppendUvarint(body, uint64(len(s.Edges)))
	for _, e := range s.Edges {
		body = binary.AppendVarint(body, e[0])
		body = binary.AppendVarint(body, e[1])
	}
	body = binary.AppendUvarint(body, uint64(len(certs)))
	for _, c := range certs {
		body = binary.AppendVarint(body, c.ID)
		body = binary.AppendVarint(body, c.Bits)
		body = binary.AppendUvarint(body, uint64(len(c.Data)))
		body = append(body, c.Data...)
	}

	out := make([]byte, 0, snapHeaderSize+len(body)+4)
	out = append(out, snapMagic...)
	out = binary.LittleEndian.AppendUint32(out, snapVersion)
	out = binary.LittleEndian.AppendUint32(out, uint32(len(body)))
	out = append(out, body...)
	out = binary.LittleEndian.AppendUint32(out, crc32.ChecksumIEEE(body))
	return out
}

type snapReader struct {
	p []byte
}

func (r *snapReader) uvarint() (uint64, error) {
	v, n := binary.Uvarint(r.p)
	if n <= 0 {
		return 0, fmt.Errorf("%w: bad uvarint", ErrCorrupt)
	}
	r.p = r.p[n:]
	return v, nil
}

func (r *snapReader) varint() (int64, error) {
	v, n := binary.Varint(r.p)
	if n <= 0 {
		return 0, fmt.Errorf("%w: bad varint", ErrCorrupt)
	}
	r.p = r.p[n:]
	return v, nil
}

func (r *snapReader) uint64() (uint64, error) {
	if len(r.p) < 8 {
		return 0, fmt.Errorf("%w: truncated uint64", ErrCorrupt)
	}
	v := binary.LittleEndian.Uint64(r.p)
	r.p = r.p[8:]
	return v, nil
}

func (r *snapReader) bytes(n uint64) ([]byte, error) {
	if n > uint64(len(r.p)) {
		return nil, fmt.Errorf("%w: truncated byte field", ErrCorrupt)
	}
	b := r.p[:n]
	r.p = r.p[n:]
	return b, nil
}

func (r *snapReader) string(maxLen uint64) (string, error) {
	n, err := r.uvarint()
	if err != nil {
		return "", err
	}
	if n > maxLen {
		return "", fmt.Errorf("%w: string length %d exceeds limit", ErrCorrupt, n)
	}
	b, err := r.bytes(n)
	if err != nil {
		return "", err
	}
	return string(b), nil
}

// DecodeSnapshot parses and integrity-checks a snapshot file. Every
// failure — bad magic, version, length, CRC, or malformed body — wraps
// ErrCorrupt; recovery then falls back to the previous snapshot.
func DecodeSnapshot(raw []byte) (*Snapshot, error) {
	if len(raw) < snapHeaderSize+4 {
		return nil, fmt.Errorf("%w: snapshot shorter than its header", ErrCorrupt)
	}
	if string(raw[:len(snapMagic)]) != snapMagic {
		return nil, fmt.Errorf("%w: bad snapshot magic", ErrCorrupt)
	}
	if v := binary.LittleEndian.Uint32(raw[len(snapMagic):]); v != snapVersion {
		return nil, fmt.Errorf("%w: unsupported snapshot version %d", ErrCorrupt, v)
	}
	bodyLen := binary.LittleEndian.Uint32(raw[len(snapMagic)+4:])
	if bodyLen > maxSnapshotBytes || int(bodyLen) != len(raw)-snapHeaderSize-4 {
		return nil, fmt.Errorf("%w: snapshot body length mismatch", ErrCorrupt)
	}
	body := raw[snapHeaderSize : snapHeaderSize+int(bodyLen)]
	sum := binary.LittleEndian.Uint32(raw[snapHeaderSize+int(bodyLen):])
	if crc32.ChecksumIEEE(body) != sum {
		return nil, fmt.Errorf("%w: snapshot CRC mismatch", ErrCorrupt)
	}

	r := &snapReader{p: body}
	s := &Snapshot{}
	var err error
	if s.Name, err = r.string(maxStringBytes); err != nil {
		return nil, err
	}
	if s.Scheme, err = r.string(maxStringBytes); err != nil {
		return nil, err
	}
	if s.ActiveScheme, err = r.string(maxStringBytes); err != nil {
		return nil, err
	}
	if s.Generation, err = r.uint64(); err != nil {
		return nil, err
	}
	if s.Seq, err = r.uint64(); err != nil {
		return nil, err
	}
	if s.FingerprintHi, err = r.uint64(); err != nil {
		return nil, err
	}
	if s.FingerprintLo, err = r.uint64(); err != nil {
		return nil, err
	}
	if s.RepairThreshold, err = r.varint(); err != nil {
		return nil, err
	}
	if s.CacheSize, err = r.varint(); err != nil {
		return nil, err
	}
	flip, err := r.bytes(1)
	if err != nil {
		return nil, err
	}
	s.NoFlip = flip[0] != 0

	nNodes, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	if nNodes > uint64(len(r.p)) {
		return nil, fmt.Errorf("%w: node count exceeds body", ErrCorrupt)
	}
	s.Nodes = make([]int64, 0, nNodes)
	for i := uint64(0); i < nNodes; i++ {
		id, err := r.varint()
		if err != nil {
			return nil, err
		}
		s.Nodes = append(s.Nodes, id)
	}
	nEdges, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	if nEdges > uint64(len(r.p)) {
		return nil, fmt.Errorf("%w: edge count exceeds body", ErrCorrupt)
	}
	s.Edges = make([][2]int64, 0, nEdges)
	for i := uint64(0); i < nEdges; i++ {
		a, err := r.varint()
		if err != nil {
			return nil, err
		}
		b, err := r.varint()
		if err != nil {
			return nil, err
		}
		s.Edges = append(s.Edges, [2]int64{a, b})
	}
	nCerts, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	if nCerts > uint64(len(r.p)) {
		return nil, fmt.Errorf("%w: certificate count exceeds body", ErrCorrupt)
	}
	s.Certs = make([]NodeCert, 0, nCerts)
	for i := uint64(0); i < nCerts; i++ {
		var c NodeCert
		if c.ID, err = r.varint(); err != nil {
			return nil, err
		}
		if c.Bits, err = r.varint(); err != nil {
			return nil, err
		}
		dataLen, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		data, err := r.bytes(dataLen)
		if err != nil {
			return nil, err
		}
		c.Data = append([]byte(nil), data...)
		s.Certs = append(s.Certs, c)
	}
	if len(r.p) != 0 {
		return nil, fmt.Errorf("%w: %d trailing snapshot bytes", ErrCorrupt, len(r.p))
	}
	return s, nil
}
