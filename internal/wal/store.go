package wal

import (
	"encoding/hex"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// snapKeep is the number of most-recent snapshots retained after a new
// one lands: the newest plus one fallback.
const snapKeep = 2

// Recovered is the durable state reconstructed when a session store is
// opened: the newest valid snapshot (if any) and the WAL tail past it.
type Recovered struct {
	// Snapshot is the newest snapshot that decoded cleanly; nil when the
	// directory holds none.
	Snapshot *Snapshot
	// Tail holds the WAL batches with Seq > Snapshot.Seq (all valid
	// batches when Snapshot is nil), in sequence order.
	Tail []Batch
	// Stats summarises the WAL replay.
	Stats ReplayStats
	// SnapshotsDiscarded counts snapshot files that failed to decode and
	// were skipped in favour of an older one.
	SnapshotsDiscarded int
}

// Store manages one session's durable state: its write-ahead log and
// snapshot files inside a single directory. Not safe for concurrent
// use; planarcertd serializes access per session.
type Store struct {
	dir    string
	policy SyncPolicy
	log    *Log
}

// OpenStore opens (creating if needed) a session directory, loads the
// newest valid snapshot, replays the WAL, and returns the recovered
// state with the store positioned for appending.
func OpenStore(dir string, policy SyncPolicy) (*Store, *Recovered, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, err
	}
	rec := &Recovered{}

	names, err := snapshotFiles(dir)
	if err != nil {
		return nil, nil, err
	}
	// Newest first; fall back across corrupt files.
	for i := len(names) - 1; i >= 0; i-- {
		raw, err := os.ReadFile(filepath.Join(dir, names[i]))
		if err != nil {
			rec.SnapshotsDiscarded++
			continue
		}
		snap, err := DecodeSnapshot(raw)
		if err != nil {
			rec.SnapshotsDiscarded++
			continue
		}
		rec.Snapshot = snap
		break
	}

	log, batches, stats, err := OpenLog(filepath.Join(dir, "wal.log"), policy)
	if err != nil {
		return nil, nil, err
	}
	rec.Stats = stats
	var snapSeq uint64
	if rec.Snapshot != nil {
		snapSeq = rec.Snapshot.Seq
	}
	for _, b := range batches {
		if b.Seq > snapSeq {
			rec.Tail = append(rec.Tail, b)
		}
	}
	// A snapshot newer than every log record (log was compacted) must
	// still advance the append cursor.
	log.Advance(snapSeq)
	return &Store{dir: dir, policy: policy, log: log}, rec, nil
}

// snapshotFiles lists the directory's snapshot files sorted by
// ascending sequence number.
func snapshotFiles(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	type snapFile struct {
		name string
		seq  uint64
	}
	var files []snapFile
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasPrefix(name, "snap-") || !strings.HasSuffix(name, ".snap") {
			continue
		}
		parts := strings.SplitN(strings.TrimSuffix(strings.TrimPrefix(name, "snap-"), ".snap"), "-", 2)
		seq, err := strconv.ParseUint(parts[0], 10, 64)
		if err != nil {
			continue // not ours; ignore
		}
		files = append(files, snapFile{name: name, seq: seq})
	}
	sort.Slice(files, func(i, j int) bool {
		if files[i].seq != files[j].seq {
			return files[i].seq < files[j].seq
		}
		return files[i].name < files[j].name
	})
	out := make([]string, len(files))
	for i, f := range files {
		out[i] = f.name
	}
	return out, nil
}

// NextSeq returns the sequence number the next appended batch must use.
func (st *Store) NextSeq() uint64 { return st.log.LastSeq() + 1 }

// LastSeq returns the highest durable sequence number.
func (st *Store) LastSeq() uint64 { return st.log.LastSeq() }

// AppendBatch logs one update batch under the given sequence number.
// Under SyncAlways the batch is durable when AppendBatch returns — the
// caller acks only after this succeeds (log-before-ack).
func (st *Store) AppendBatch(seq uint64, updates []Update) error {
	return st.log.Append(seq, updates)
}

// WriteSnapshot atomically persists a snapshot (write to a temporary
// file, fsync, rename), prunes old snapshots beyond the retained pair,
// and compacts the WAL when the snapshot covers its whole tail.
func (st *Store) WriteSnapshot(s *Snapshot) error {
	raw := EncodeSnapshot(s)
	final := filepath.Join(st.dir, fmt.Sprintf("snap-%020d-%016x%016x.snap", s.Seq, s.FingerprintHi, s.FingerprintLo))
	tmp := final + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(raw); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if st.policy == SyncAlways {
		if err := f.Sync(); err != nil {
			f.Close()
			os.Remove(tmp)
			return err
		}
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, final); err != nil {
		os.Remove(tmp)
		return err
	}
	if st.policy == SyncAlways {
		if err := syncDir(st.dir); err != nil {
			return err
		}
	}
	if err := st.pruneSnapshots(); err != nil {
		return err
	}
	return st.log.ResetIfCovered(s.Seq)
}

// pruneSnapshots removes all but the newest snapKeep snapshot files.
func (st *Store) pruneSnapshots() error {
	names, err := snapshotFiles(st.dir)
	if err != nil {
		return err
	}
	for len(names) > snapKeep {
		if err := os.Remove(filepath.Join(st.dir, names[0])); err != nil {
			return err
		}
		names = names[1:]
	}
	return nil
}

// Sync forces the WAL to stable storage regardless of policy.
func (st *Store) Sync() error { return st.log.Sync() }

// Close syncs and closes the store's log.
func (st *Store) Close() error { return st.log.Close() }

// syncDir fsyncs a directory so a rename inside it is durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if closeErr := d.Close(); err == nil {
		err = closeErr
	}
	return err
}

// Root manages the daemon's data directory: one session store per
// subdirectory of <dir>/sessions.
type Root struct {
	dir    string
	policy SyncPolicy
}

// OpenRoot opens (creating if needed) the data directory.
func OpenRoot(dir string, policy SyncPolicy) (*Root, error) {
	if err := os.MkdirAll(filepath.Join(dir, "sessions"), 0o755); err != nil {
		return nil, err
	}
	return &Root{dir: dir, policy: policy}, nil
}

// Dir returns the data directory path.
func (r *Root) Dir() string { return r.dir }

// SessionDirs lists the existing session directories (absolute paths).
func (r *Root) SessionDirs() ([]string, error) {
	base := filepath.Join(r.dir, "sessions")
	entries, err := os.ReadDir(base)
	if err != nil {
		return nil, err
	}
	var out []string
	for _, e := range entries {
		if e.IsDir() {
			out = append(out, filepath.Join(base, e.Name()))
		}
	}
	sort.Strings(out)
	return out, nil
}

// sessionDirName maps a session name to a filesystem-safe directory
// name. Plain names keep their spelling under an "s-" prefix; anything
// else is hex-encoded under the disjoint "x-" prefix, so distinct names
// can never collide.
func sessionDirName(name string) string {
	safe := len(name) > 0 && len(name) <= 100
	for i := 0; safe && i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '.', c == '_', c == '-':
		default:
			safe = false
		}
	}
	if safe {
		return "s-" + name
	}
	return "x-" + hex.EncodeToString([]byte(name))
}

// SessionDir returns the directory path a session name maps to.
func (r *Root) SessionDir(name string) string {
	return filepath.Join(r.dir, "sessions", sessionDirName(name))
}

// CreateSession wipes any stale state for the name and opens a fresh
// store for it.
func (r *Root) CreateSession(name string) (*Store, error) {
	dir := r.SessionDir(name)
	if err := os.RemoveAll(dir); err != nil {
		return nil, err
	}
	st, _, err := OpenStore(dir, r.policy)
	return st, err
}

// OpenSession opens the store for an existing session name, recovering
// its durable state.
func (r *Root) OpenSession(name string) (*Store, *Recovered, error) {
	return OpenStore(r.SessionDir(name), r.policy)
}

// RemoveSession deletes a session's durable state.
func (r *Root) RemoveSession(name string) error {
	dir := r.SessionDir(name)
	if _, err := os.Stat(dir); errors.Is(err, fs.ErrNotExist) {
		return nil
	}
	return os.RemoveAll(dir)
}
