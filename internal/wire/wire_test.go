package wire

import (
	"bytes"
	"encoding/hex"
	"errors"
	"io"
	"math"
	"reflect"
	"testing"
)

// goldenReport exercises every report field, including the optional
// verification block with rejecting nodes and sorted reasons.
func goldenReport() *Report {
	return &Report{
		Generation:      41,
		Mode:            "repair",
		ActiveScheme:    "planarity",
		Updates:         3,
		Dirty:           2,
		Verified:        7,
		FullVerify:      true,
		Accepted:        false,
		CacheGeneration: 12,
		RepairFallback:  "reprove",
		ProveErr:        "",
		Verification: &Verification{
			Accepted:    false,
			MaxCertBits: 96,
			AvgCertBits: 64.5,
			Messages:    14,
			MaxMsgBits:  96,
			Rejecting:   []int64{-3, 9},
			Reasons:     []Reason{{ID: -3, Text: "left"}, {ID: 9, Text: "cycle"}},
		},
	}
}

// goldenFrames pins the exact bytes of every frame kind. The format is
// FROZEN: if one of these fails after a refactor, the refactor broke the
// wire protocol — fix the code, never the fixture.
var goldenFrames = []struct {
	name   string
	encode func() ([]byte, error)
	want   string // hex
}{
	{
		name: "update_batch",
		encode: func() ([]byte, error) {
			return EncodeUpdateBatch(ModeQueue, []Update{
				{Op: OpAddEdge, A: 1, B: 2},
				{Op: OpRemoveEdge, A: 3, B: -4},
				{Op: OpAddNode, A: 5},
			})
		},
		want: "504357460101080000008a83b2a042c0a0e21e0fc250",
	},
	{
		name: "batch_ack",
		encode: func() ([]byte, error) {
			return EncodeBatchAck(&BatchAck{Queued: 3, Pending: 7, ElapsedNanos: 1234567, Report: goldenReport()})
		},
		want: "504357460102450000005c1ac8930b0fab2d6878d4879c995c185a5c849706c616e61726974790b0a0fc2607dc995c1c9bdd994087c080a0400000000000270f80283a2c8283a1c6c6566741641d6379636c65",
	},
	{
		name: "batch_ack_queue",
		encode: func() ([]byte, error) {
			return EncodeBatchAck(&BatchAck{Queued: 8, Pending: 24})
		},
		want: "50435746010204000000ad5565161205c000",
	},
	{
		name: "event",
		encode: func() ([]byte, error) {
			return EncodeEvent(42, goldenReport())
		},
		want: "5043574601034100000090532ea61aa1a90f3932b830b4b9092e0d8c2dcc2e4d2e8f216141f84c0fb932b83937bb32810f8101408000000000004e1f005074590507438d8cacce82c83ac6f2c6d8ca",
	},
	{
		name: "hello",
		encode: func() ([]byte, error) {
			return EncodeHello(Hello{Subscription: 7, Version: 99, ResumeFrom: 90, Reset: true})
		},
		want: "504357460104050000008cd5c7be0f8f8c7b50",
	},
	{
		name:   "ack",
		encode: func() ([]byte, error) { return EncodeAck(7, 99) },
		want:   "50435746010503000000a0d508ac0f8f8c",
	},
	{
		name:   "nack",
		encode: func() ([]byte, error) { return EncodeNack(7, 98, "stale") },
		want:   "5043574601060900000068b197b90f8f883ae6e8c2d8ca",
	},
	{
		name:   "error",
		encode: func() ([]byte, error) { return EncodeError(503, "busy") },
		want:   "5043574601070700000083aef6f027ee1c62757379",
	},
}

func TestGoldenFrames(t *testing.T) {
	for _, g := range goldenFrames {
		t.Run(g.name, func(t *testing.T) {
			frame, err := g.encode()
			if err != nil {
				t.Fatalf("encode: %v", err)
			}
			got := hex.EncodeToString(frame)
			if got != g.want {
				t.Fatalf("frame bytes changed — the wire format is frozen\n got: %s\nwant: %s", got, g.want)
			}
		})
	}
}

func TestGoldenFramesParse(t *testing.T) {
	// Every golden fixture must parse back from its pinned hex alone, so
	// the fixtures stay decodable even if every encoder changes.
	for _, g := range goldenFrames {
		t.Run(g.name, func(t *testing.T) {
			raw, err := hex.DecodeString(g.want)
			if err != nil {
				t.Fatalf("bad fixture hex: %v", err)
			}
			kind, payload, n, err := ParseFrame(raw)
			if err != nil {
				t.Fatalf("ParseFrame: %v", err)
			}
			if n != len(raw) {
				t.Fatalf("consumed %d of %d bytes", n, len(raw))
			}
			if err := decodeByKind(kind, payload); err != nil {
				t.Fatalf("decode %s: %v", kind, err)
			}
		})
	}
}

// decodeByKind routes a payload to its kind's decoder.
func decodeByKind(kind Kind, payload []byte) error {
	switch kind {
	case KindUpdateBatch:
		_, _, err := DecodeUpdateBatch(payload, nil)
		return err
	case KindBatchAck:
		_, err := DecodeBatchAck(payload)
		return err
	case KindEvent:
		_, _, err := DecodeEvent(payload)
		return err
	case KindHello:
		_, err := DecodeHello(payload)
		return err
	case KindAck:
		_, _, err := DecodeAck(payload)
		return err
	case KindNack:
		_, _, _, err := DecodeNack(payload)
		return err
	case KindError:
		_, _, err := DecodeError(payload)
		return err
	}
	return errors.New("unknown kind")
}

func TestFrameHeader(t *testing.T) {
	frame, err := AppendFrame(nil, KindHello, []byte{0xab, 0xcd})
	if err != nil {
		t.Fatal(err)
	}
	if len(frame) != HeaderSize+2 {
		t.Fatalf("frame length %d, want %d", len(frame), HeaderSize+2)
	}
	if string(frame[:4]) != "PCWF" {
		t.Fatalf("magic %q", frame[:4])
	}
	if frame[4] != Version {
		t.Fatalf("version %d", frame[4])
	}
	if Kind(frame[5]) != KindHello {
		t.Fatalf("kind %d", frame[5])
	}
}

func TestAppendFrameTooLarge(t *testing.T) {
	if _, err := AppendFrame(nil, KindEvent, make([]byte, MaxPayload+1)); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("err = %v, want ErrTooLarge", err)
	}
}

// TestFrameCorruption mirrors internal/wal's battery: every single-byte
// flip and every truncation of every golden frame must surface an error
// from ParseFrame or the payload decoder — never a panic, never silent
// acceptance of different bytes as the same record.
func TestFrameCorruption(t *testing.T) {
	for _, g := range goldenFrames {
		frame, err := g.encode()
		if err != nil {
			t.Fatal(err)
		}
		t.Run(g.name+"/bitflip", func(t *testing.T) {
			for i := range frame {
				mut := bytes.Clone(frame)
				mut[i] ^= 0x20
				kind, payload, _, err := ParseFrame(mut)
				if err != nil {
					continue // header or checksum caught it
				}
				// A flip the CRC cannot catch would need a second flip in the
				// CRC field itself; a single flip always errors.
				t.Errorf("byte %d flip parsed cleanly (kind %s, %d payload bytes)", i, kind, len(payload))
			}
		})
		t.Run(g.name+"/truncate", func(t *testing.T) {
			for n := 0; n < len(frame); n++ {
				if _, _, _, err := ParseFrame(frame[:n]); !errors.Is(err, ErrTruncated) {
					t.Errorf("prefix %d: err = %v, want ErrTruncated", n, err)
				}
			}
		})
	}
}

// TestPayloadCorruption flips and truncates the decoded payloads
// directly (as if the CRC had been forged) and requires the payload
// decoders to fail or succeed without panicking or over-allocating.
func TestPayloadCorruption(t *testing.T) {
	for _, g := range goldenFrames {
		frame, err := g.encode()
		if err != nil {
			t.Fatal(err)
		}
		kind, payload, _, err := ParseFrame(frame)
		if err != nil {
			t.Fatal(err)
		}
		t.Run(g.name, func(t *testing.T) {
			for n := 0; n < len(payload); n++ {
				_ = decodeByKind(kind, payload[:n])
			}
			for i := range payload {
				mut := bytes.Clone(payload)
				mut[i] ^= 0x20
				_ = decodeByKind(kind, mut)
			}
		})
	}
}

func TestParseFrameErrors(t *testing.T) {
	good, err := EncodeAck(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	tests := []struct {
		name string
		mut  func([]byte) []byte
		want error
	}{
		{"bad_magic", func(b []byte) []byte { b[0] = 'X'; return b }, ErrBadMagic},
		{"bad_version", func(b []byte) []byte { b[4] = 99; return b }, ErrBadVersion},
		{"bad_kind_zero", func(b []byte) []byte { b[5] = 0; return b }, ErrBadKind},
		{"bad_kind_high", func(b []byte) []byte { b[5] = 200; return b }, ErrBadKind},
		{"too_large", func(b []byte) []byte { b[6], b[7], b[8], b[9] = 0xff, 0xff, 0xff, 0x7f; return b }, ErrTooLarge},
		{"short_payload", func(b []byte) []byte { b[6] = byte(len(b)) - HeaderSize + 1; return b }, ErrTruncated},
		{"bad_crc", func(b []byte) []byte { b[10] ^= 0xff; return b }, ErrChecksum},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if _, _, _, err := ParseFrame(tc.mut(bytes.Clone(good))); !errors.Is(err, tc.want) {
				t.Fatalf("err = %v, want %v", err, tc.want)
			}
		})
	}
}

func TestUpdateBatchRoundTrip(t *testing.T) {
	ups := []Update{
		{Op: OpAddNode, A: 0},
		{Op: OpAddNode, A: -1},
		{Op: OpAddEdge, A: 1, B: -2},
		{Op: OpRemoveEdge, A: 1 << 40, B: -(1 << 40)},
		{Op: OpAddEdge, A: (1 << 61) - 1, B: -(1 << 61)},
	}
	for _, mode := range []BatchMode{ModeApply, ModeQueue} {
		frame, err := EncodeUpdateBatch(mode, ups)
		if err != nil {
			t.Fatal(err)
		}
		kind, payload, n, err := ParseFrame(frame)
		if err != nil || kind != KindUpdateBatch || n != len(frame) {
			t.Fatalf("parse: kind %v n %d err %v", kind, n, err)
		}
		sc := GetScratch()
		gotMode, got, err := DecodeUpdateBatch(payload, sc)
		if err != nil {
			t.Fatal(err)
		}
		if gotMode != mode || !reflect.DeepEqual(got, ups) {
			t.Fatalf("round trip: mode %v ups %+v", gotMode, got)
		}
		// Re-encode must be byte-identical — the format is canonical.
		again, err := EncodeUpdateBatch(gotMode, got)
		if err != nil {
			t.Fatal(err)
		}
		sc.Release()
		if !bytes.Equal(again, frame) {
			t.Fatalf("re-encode differs:\n got %x\nwant %x", again, frame)
		}
	}
}

func TestUpdateBatchRange(t *testing.T) {
	// WriteVarInt covers |v| < 1<<62; out-of-range values must be a clean
	// encode error, not silent truncation.
	if _, err := EncodeUpdateBatch(ModeApply, []Update{{Op: OpAddNode, A: 1 << 62}}); err == nil {
		t.Fatal("encoded out-of-range node id")
	}
	if _, err := EncodeUpdateBatch(ModeApply, []Update{{Op: 3, A: 1}}); err == nil {
		t.Fatal("encoded invalid op")
	}
	if _, err := EncodeUpdateBatch(BatchMode(2), nil); err == nil {
		t.Fatal("encoded invalid mode")
	}
}

func TestBatchAckRoundTrip(t *testing.T) {
	for _, a := range []*BatchAck{
		{Queued: 0, Pending: 0},
		{Queued: 100, Pending: 3, ElapsedNanos: 12345},
		{Queued: 1, ElapsedNanos: 987654321, Report: goldenReport()},
		{Queued: 2, Report: &Report{Generation: 1, Mode: "cache", ActiveScheme: "planarity", Accepted: true}},
	} {
		frame, err := EncodeBatchAck(a)
		if err != nil {
			t.Fatal(err)
		}
		_, payload, _, err := ParseFrame(frame)
		if err != nil {
			t.Fatal(err)
		}
		got, err := DecodeBatchAck(payload)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, a) {
			t.Fatalf("round trip:\n got %+v\nwant %+v", got, a)
		}
	}
}

func TestEventRoundTrip(t *testing.T) {
	frame, err := EncodeEvent(1<<40, goldenReport())
	if err != nil {
		t.Fatal(err)
	}
	_, payload, _, err := ParseFrame(frame)
	if err != nil {
		t.Fatal(err)
	}
	version, rep, err := DecodeEvent(payload)
	if err != nil {
		t.Fatal(err)
	}
	if version != 1<<40 || !reflect.DeepEqual(rep, goldenReport()) {
		t.Fatalf("round trip: version %d rep %+v", version, rep)
	}
}

func TestReportSpecialFloats(t *testing.T) {
	rep := &Report{Mode: "reprove", Verification: &Verification{AvgCertBits: math.Inf(1)}}
	frame, err := EncodeEvent(1, rep)
	if err != nil {
		t.Fatal(err)
	}
	_, payload, _, err := ParseFrame(frame)
	if err != nil {
		t.Fatal(err)
	}
	_, got, err := DecodeEvent(payload)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(got.Verification.AvgCertBits, 1) {
		t.Fatalf("AvgCertBits = %v", got.Verification.AvgCertBits)
	}
}

func TestUnsortedReasonsRejected(t *testing.T) {
	rep := goldenReport()
	rep.Verification.Reasons = []Reason{{ID: 9, Text: "b"}, {ID: -3, Text: "a"}}
	if _, err := EncodeEvent(1, rep); err == nil {
		t.Fatal("encoded unsorted reasons")
	}
	rep.Verification.Reasons = []Reason{{ID: 4, Text: "b"}, {ID: 4, Text: "a"}}
	if _, err := EncodeEvent(1, rep); err == nil {
		t.Fatal("encoded duplicate reason ids")
	}
}

func TestHelloAckNackErrorRoundTrip(t *testing.T) {
	h := Hello{Subscription: 12, Version: 34, ResumeFrom: 30, Reset: true}
	frame, err := EncodeHello(h)
	if err != nil {
		t.Fatal(err)
	}
	_, payload, _, err := ParseFrame(frame)
	if err != nil {
		t.Fatal(err)
	}
	if got, err := DecodeHello(payload); err != nil || got != h {
		t.Fatalf("hello: %+v, %v", got, err)
	}

	frame, _ = EncodeAck(5, 17)
	_, payload, _, _ = ParseFrame(frame)
	if sub, version, err := DecodeAck(payload); err != nil || sub != 5 || version != 17 {
		t.Fatalf("ack: %d %d %v", sub, version, err)
	}

	frame, _ = EncodeNack(5, 17, "schema mismatch")
	_, payload, _, _ = ParseFrame(frame)
	if sub, version, reason, err := DecodeNack(payload); err != nil || sub != 5 || version != 17 || reason != "schema mismatch" {
		t.Fatalf("nack: %d %d %q %v", sub, version, reason, err)
	}

	frame, _ = EncodeError(429, "slow down")
	_, payload, _, _ = ParseFrame(frame)
	if code, msg, err := DecodeError(payload); err != nil || code != 429 || msg != "slow down" {
		t.Fatalf("error: %d %q %v", code, msg, err)
	}
}

func TestReaderStream(t *testing.T) {
	var stream []byte
	for _, g := range goldenFrames {
		frame, err := g.encode()
		if err != nil {
			t.Fatal(err)
		}
		stream = append(stream, frame...)
	}
	fr := NewReader(bytes.NewReader(stream))
	for _, g := range goldenFrames {
		kind, payload, err := fr.Next()
		if err != nil {
			t.Fatalf("%s: %v", g.name, err)
		}
		if err := decodeByKind(kind, payload); err != nil {
			t.Fatalf("%s: decode: %v", g.name, err)
		}
	}
	if _, _, err := fr.Next(); err != io.EOF {
		t.Fatalf("end of stream: %v, want io.EOF", err)
	}

	// A stream cut mid-frame is ErrUnexpectedEOF, not a clean end.
	for _, cut := range []int{1, HeaderSize - 1, HeaderSize, HeaderSize + 1} {
		fr = NewReader(bytes.NewReader(stream[:cut]))
		if _, _, err := fr.Next(); err != io.ErrUnexpectedEOF {
			t.Fatalf("cut %d: %v, want io.ErrUnexpectedEOF", cut, err)
		}
	}
}

func TestDecodeUpdateBatchAllocs(t *testing.T) {
	ups := make([]Update, 256)
	for i := range ups {
		ups[i] = Update{Op: Op(i % 3), A: int64(i), B: int64(-i)}
	}
	frame, err := EncodeUpdateBatch(ModeApply, ups)
	if err != nil {
		t.Fatal(err)
	}
	_, payload, _, err := ParseFrame(frame)
	if err != nil {
		t.Fatal(err)
	}
	sc := GetScratch()
	defer sc.Release()
	// Warm the scratch so the slab is sized, then demand zero steady-state
	// allocations (the ISSUE budget is <=2 per batch; decode itself is 0).
	if _, _, err := DecodeUpdateBatch(payload, sc); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if _, _, err := DecodeUpdateBatch(payload, sc); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 2 {
		t.Fatalf("steady-state decode allocates %.1f per batch, budget is 2", allocs)
	}
}

func BenchmarkDecodeUpdateBatch(b *testing.B) {
	ups := make([]Update, 1024)
	for i := range ups {
		ups[i] = Update{Op: Op(i % 3), A: int64(i * 3), B: int64(-i * 7)}
	}
	frame, err := EncodeUpdateBatch(ModeQueue, ups)
	if err != nil {
		b.Fatal(err)
	}
	_, payload, _, err := ParseFrame(frame)
	if err != nil {
		b.Fatal(err)
	}
	sc := GetScratch()
	defer sc.Release()
	b.SetBytes(int64(len(frame)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := DecodeUpdateBatch(payload, sc); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEncodeUpdateBatch(b *testing.B) {
	ups := make([]Update, 1024)
	for i := range ups {
		ups[i] = Update{Op: Op(i % 3), A: int64(i * 3), B: int64(-i * 7)}
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := EncodeUpdateBatch(ModeQueue, ups); err != nil {
			b.Fatal(err)
		}
	}
}

// FuzzParseFrame feeds arbitrary bytes through the frame parser and
// every payload decoder: nothing may panic or over-allocate.
func FuzzParseFrame(f *testing.F) {
	for _, g := range goldenFrames {
		frame, err := g.encode()
		if err != nil {
			f.Fatal(err)
		}
		f.Add(frame)
	}
	f.Add([]byte("PCWF"))
	f.Add(make([]byte, HeaderSize))
	f.Fuzz(func(t *testing.T, data []byte) {
		kind, payload, n, err := ParseFrame(data)
		if err != nil {
			return
		}
		if n > len(data) {
			t.Fatalf("consumed %d of %d bytes", n, len(data))
		}
		_ = decodeByKind(kind, payload)
	})
}
