package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// ContentType is the HTTP media type of a planarcert binary frame
// stream (both request bodies and watch streams).
const ContentType = "application/x-planarcert-frame"

// Version is the frame format version carried in every header. Decoders
// reject other versions; format evolution bumps this and keeps old
// decoders.
const Version = 1

// HeaderSize is the fixed frame header length in bytes.
const HeaderSize = 14

// MaxPayload bounds a frame payload so a corrupt or hostile length
// field cannot make a decoder allocate gigabytes (same guard as
// internal/wal's maxRecordBytes).
const MaxPayload = 1 << 26

// frameMagic opens every frame.
const frameMagic = "PCWF"

// Kind identifies what a frame's payload carries. The numeric values
// are part of the frozen wire format.
type Kind byte

// Frame kinds. UpdateBatch flows client->server on POST .../updates;
// BatchAck is its response. Hello and Event flow server->client on a
// binary watch stream; Ack and Nack flow client->server on the watch
// acknowledgement endpoint. Error is a server->client failure frame.
const (
	KindUpdateBatch Kind = 1
	KindBatchAck    Kind = 2
	KindEvent       Kind = 3
	KindHello       Kind = 4
	KindAck         Kind = 5
	KindNack        Kind = 6
	KindError       Kind = 7
)

// String names the kind for diagnostics.
func (k Kind) String() string {
	switch k {
	case KindUpdateBatch:
		return "update_batch"
	case KindBatchAck:
		return "batch_ack"
	case KindEvent:
		return "event"
	case KindHello:
		return "hello"
	case KindAck:
		return "ack"
	case KindNack:
		return "nack"
	case KindError:
		return "error"
	}
	return fmt.Sprintf("kind(%d)", byte(k))
}

// valid reports whether k is a known frame kind.
func (k Kind) valid() bool { return k >= KindUpdateBatch && k <= KindError }

// Decode errors. ErrTruncated distinguishes "more bytes may fix it"
// (streaming reads) from the unrecoverable corruption errors.
var (
	ErrTruncated  = errors.New("wire: truncated frame")
	ErrBadMagic   = errors.New("wire: bad frame magic")
	ErrBadVersion = errors.New("wire: unsupported frame version")
	ErrBadKind    = errors.New("wire: unknown frame kind")
	ErrTooLarge   = errors.New("wire: frame payload exceeds limit")
	ErrChecksum   = errors.New("wire: payload checksum mismatch")
	ErrBadPayload = errors.New("wire: malformed frame payload")
)

// AppendFrame appends one complete frame (header + payload) to dst and
// returns the extended slice. It fails only when the payload exceeds
// MaxPayload.
func AppendFrame(dst []byte, kind Kind, payload []byte) ([]byte, error) {
	if len(payload) > MaxPayload {
		return dst, fmt.Errorf("%w: %d bytes", ErrTooLarge, len(payload))
	}
	var hdr [HeaderSize]byte
	copy(hdr[:4], frameMagic)
	hdr[4] = Version
	hdr[5] = byte(kind)
	binary.LittleEndian.PutUint32(hdr[6:10], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[10:14], crc32.ChecksumIEEE(payload))
	dst = append(dst, hdr[:]...)
	return append(dst, payload...), nil
}

// ParseFrame decodes the frame at the front of b. The returned payload
// ALIASES b (zero-copy); n is the total frame length consumed. A short
// buffer returns ErrTruncated so streaming callers can wait for more
// bytes; every other error is unrecoverable corruption.
func ParseFrame(b []byte) (kind Kind, payload []byte, n int, err error) {
	if len(b) < HeaderSize {
		return 0, nil, 0, ErrTruncated
	}
	if string(b[:4]) != frameMagic {
		return 0, nil, 0, ErrBadMagic
	}
	if b[4] != Version {
		return 0, nil, 0, fmt.Errorf("%w: %d", ErrBadVersion, b[4])
	}
	kind = Kind(b[5])
	if !kind.valid() {
		return 0, nil, 0, fmt.Errorf("%w: %d", ErrBadKind, b[5])
	}
	plen := binary.LittleEndian.Uint32(b[6:10])
	if plen > MaxPayload {
		return 0, nil, 0, fmt.Errorf("%w: %d bytes", ErrTooLarge, plen)
	}
	if len(b) < HeaderSize+int(plen) {
		return 0, nil, 0, ErrTruncated
	}
	payload = b[HeaderSize : HeaderSize+int(plen)]
	if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(b[10:14]) {
		return 0, nil, 0, ErrChecksum
	}
	return kind, payload, HeaderSize + int(plen), nil
}

// Reader decodes a stream of frames from an io.Reader, reusing one
// payload buffer across frames (the returned payload is valid until the
// next Next call). Watch-stream clients wrap the response body with it.
type Reader struct {
	r   io.Reader
	hdr [HeaderSize]byte
	buf []byte
}

// NewReader returns a frame reader over r.
func NewReader(r io.Reader) *Reader { return &Reader{r: r} }

// Next reads one frame. It returns io.EOF on a clean end-of-stream and
// io.ErrUnexpectedEOF when the stream ends mid-frame.
func (fr *Reader) Next() (Kind, []byte, error) {
	if _, err := io.ReadFull(fr.r, fr.hdr[:]); err != nil {
		if errors.Is(err, io.ErrUnexpectedEOF) {
			return 0, nil, io.ErrUnexpectedEOF
		}
		return 0, nil, err
	}
	if string(fr.hdr[:4]) != frameMagic {
		return 0, nil, ErrBadMagic
	}
	if fr.hdr[4] != Version {
		return 0, nil, fmt.Errorf("%w: %d", ErrBadVersion, fr.hdr[4])
	}
	kind := Kind(fr.hdr[5])
	if !kind.valid() {
		return 0, nil, fmt.Errorf("%w: %d", ErrBadKind, fr.hdr[5])
	}
	plen := binary.LittleEndian.Uint32(fr.hdr[6:10])
	if plen > MaxPayload {
		return 0, nil, fmt.Errorf("%w: %d bytes", ErrTooLarge, plen)
	}
	if cap(fr.buf) < int(plen) {
		fr.buf = make([]byte, plen)
	}
	payload := fr.buf[:plen]
	if _, err := io.ReadFull(fr.r, payload); err != nil {
		return 0, nil, io.ErrUnexpectedEOF
	}
	if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(fr.hdr[10:14]) {
		return 0, nil, ErrChecksum
	}
	return kind, payload, nil
}
