package wire

import (
	"fmt"
	"math"
	"sync"

	"github.com/planarcert/planarcert/internal/bits"
)

// Op is a topology update operation. The numeric values are the frozen
// 2-bit on-the-wire codes (they intentionally differ from wal.Op, which
// froze 1-based codes for its own format).
type Op byte

// Update operations.
const (
	OpAddEdge    Op = 0
	OpRemoveEdge Op = 1
	OpAddNode    Op = 2
)

// BatchMode says what the server should do with an update batch. The
// values are the frozen 2-bit on-the-wire codes.
type BatchMode byte

// Batch modes: apply absorbs the batch (plus any pending log) now,
// queue only appends to the session log for a later flush.
const (
	ModeApply BatchMode = 0
	ModeQueue BatchMode = 1
)

// Update is one topology update in neutral wire types (the package
// cannot import the root planarcert types — the root imports it).
// AddNode uses only A.
type Update struct {
	Op   Op
	A, B int64
}

// BatchAck is the response to an update-batch frame.
type BatchAck struct {
	// Queued counts the updates accepted by the request.
	Queued int
	// Pending counts updates still queued after the request (queue mode).
	Pending int
	// ElapsedNanos is the server-side batch execution time (apply mode).
	ElapsedNanos uint64
	// Report is the absorption report (apply mode only).
	Report *Report
}

// Report mirrors planarcert.SessionReport in neutral wire types.
type Report struct {
	Generation      uint64
	Mode            string
	ActiveScheme    string
	Updates         int
	Dirty           int
	Verified        int
	FullVerify      bool
	Accepted        bool
	CacheGeneration uint64
	RepairFallback  string
	ProveErr        string
	Verification    *Verification
}

// Verification mirrors planarcert.Report (the per-sweep verification
// outcome) in neutral wire types. Reasons must be sorted by ID before
// encoding — the encoder enforces it so equal reports always produce
// identical bytes.
type Verification struct {
	Accepted    bool
	MaxCertBits int
	AvgCertBits float64
	Messages    int
	MaxMsgBits  int
	Rejecting   []int64
	Reasons     []Reason
}

// Reason pairs a rejecting node with its reason string.
type Reason struct {
	ID   int64
	Text string
}

// Hello opens a binary watch stream: the subscription identifier (new
// or resumed), the session's latest event version, and how the resume
// was honored.
type Hello struct {
	// Subscription identifies the version-acknowledged subscription;
	// pass it back as ?sub= to resume and in Ack/Nack frames.
	Subscription uint64
	// Version is the session's latest event version at attach time.
	Version uint64
	// ResumeFrom is the version replay restarts after (the last ACKed
	// version of a resumed subscription; Version for a fresh one).
	ResumeFrom uint64
	// Reset reports that the replay ring no longer covered the gap back
	// to ResumeFrom: only the latest event is replayed and the client
	// must re-sync full state (e.g. GET .../graph and .../certificates).
	Reset bool
}

// encodeFrame runs fill against a pooled bits.Writer and wraps the
// payload in a frame of the given kind.
func encodeFrame(kind Kind, fill func(w *bits.Writer) error) ([]byte, error) {
	w := writerPool.Get().(*bits.Writer)
	defer writerPool.Put(w)
	w.Reset()
	if err := fill(w); err != nil {
		return nil, err
	}
	return AppendFrame(make([]byte, 0, HeaderSize+len(w.Raw())), kind, w.Raw())
}

var writerPool = sync.Pool{New: func() interface{} { return new(bits.Writer) }}

// writeNonNeg encodes a non-negative int as a varint.
func writeNonNeg(w *bits.Writer, v int, field string) error {
	if v < 0 {
		return fmt.Errorf("wire: negative %s %d", field, v)
	}
	return w.WriteVar(uint64(v))
}

// writeString encodes a varint byte length followed by the raw bytes.
func writeString(w *bits.Writer, s string) error {
	if err := w.WriteVar(uint64(len(s))); err != nil {
		return err
	}
	for i := 0; i < len(s); i++ {
		if err := w.WriteUint(uint64(s[i]), 8); err != nil {
			return err
		}
	}
	return nil
}

// readString decodes a string written by writeString. The byte length
// is bounded by the payload the reader was reset onto, so a corrupt
// length cannot cause a giant allocation.
func readString(r *bits.Reader, limit int) (string, error) {
	n, err := r.ReadVar()
	if err != nil {
		return "", err
	}
	if n > uint64(limit) {
		return "", fmt.Errorf("%w: string length %d", ErrBadPayload, n)
	}
	if n == 0 {
		return "", nil
	}
	buf := make([]byte, n)
	for i := range buf {
		c, err := r.ReadUint(8)
		if err != nil {
			return "", err
		}
		buf[i] = byte(c)
	}
	return string(buf), nil
}

// EncodeUpdateBatch encodes one update batch as a complete frame.
func EncodeUpdateBatch(mode BatchMode, ups []Update) ([]byte, error) {
	if mode > ModeQueue {
		return nil, fmt.Errorf("wire: bad batch mode %d", mode)
	}
	return encodeFrame(KindUpdateBatch, func(w *bits.Writer) error {
		if err := w.WriteUint(uint64(mode), 2); err != nil {
			return err
		}
		if err := w.WriteVar(uint64(len(ups))); err != nil {
			return err
		}
		for _, u := range ups {
			if u.Op > OpAddNode {
				return fmt.Errorf("wire: bad op %d", u.Op)
			}
			if err := w.WriteUint(uint64(u.Op), 2); err != nil {
				return err
			}
			if err := w.WriteVarInt(u.A); err != nil {
				return err
			}
			if u.Op != OpAddNode {
				if err := w.WriteVarInt(u.B); err != nil {
					return err
				}
			}
		}
		return nil
	})
}

// Scratch is a pooled decode arena for update batches: the slice
// DecodeUpdateBatch returns aliases it, so a steady-state decode costs
// zero allocations. Release returns it to the pool once the decoded
// batch has been consumed.
type Scratch struct {
	r   bits.Reader
	ups []Update
}

var scratchPool = sync.Pool{New: func() interface{} { return new(Scratch) }}

// GetScratch takes a scratch from the shared pool.
func GetScratch() *Scratch { return scratchPool.Get().(*Scratch) }

// Release returns the scratch (and every batch decoded into it) to the
// pool.
func (s *Scratch) Release() { scratchPool.Put(s) }

// DecodeUpdateBatch decodes an update-batch payload into s. The
// returned slice aliases s and is invalidated by the next decode or
// Release. A nil scratch allocates fresh (convenient for tests).
func DecodeUpdateBatch(payload []byte, s *Scratch) (BatchMode, []Update, error) {
	if s == nil {
		s = new(Scratch)
	}
	s.r.Reset(payload, len(payload)*8)
	m, err := s.r.ReadUint(2)
	if err != nil {
		return 0, nil, fmt.Errorf("%w: %v", ErrBadPayload, err)
	}
	if BatchMode(m) > ModeQueue {
		return 0, nil, fmt.Errorf("%w: batch mode %d", ErrBadPayload, m)
	}
	count, err := s.r.ReadVar()
	if err != nil {
		return 0, nil, fmt.Errorf("%w: %v", ErrBadPayload, err)
	}
	// Every update costs at least 8 bits, so count is bounded by the
	// payload size — a corrupt count cannot force a giant allocation.
	if count > uint64(len(payload)) {
		return 0, nil, fmt.Errorf("%w: update count %d exceeds payload", ErrBadPayload, count)
	}
	if cap(s.ups) < int(count) {
		s.ups = make([]Update, count)
	}
	ups := s.ups[:count]
	for i := range ups {
		op, err := s.r.ReadUint(2)
		if err != nil {
			return 0, nil, fmt.Errorf("%w: %v", ErrBadPayload, err)
		}
		if Op(op) > OpAddNode {
			return 0, nil, fmt.Errorf("%w: op %d", ErrBadPayload, op)
		}
		ups[i].Op = Op(op)
		if ups[i].A, err = s.r.ReadVarInt(); err != nil {
			return 0, nil, fmt.Errorf("%w: %v", ErrBadPayload, err)
		}
		ups[i].B = 0
		if Op(op) != OpAddNode {
			if ups[i].B, err = s.r.ReadVarInt(); err != nil {
				return 0, nil, fmt.Errorf("%w: %v", ErrBadPayload, err)
			}
		}
	}
	return BatchMode(m), ups, nil
}

// EncodeBatchAck encodes an update-batch response as a complete frame.
func EncodeBatchAck(a *BatchAck) ([]byte, error) {
	return encodeFrame(KindBatchAck, func(w *bits.Writer) error {
		if err := writeNonNeg(w, a.Queued, "queued"); err != nil {
			return err
		}
		if err := writeNonNeg(w, a.Pending, "pending"); err != nil {
			return err
		}
		if err := w.WriteVar(a.ElapsedNanos); err != nil {
			return err
		}
		w.WriteBit(a.Report != nil)
		if a.Report != nil {
			return writeReport(w, a.Report)
		}
		return nil
	})
}

// DecodeBatchAck decodes a batch-ack payload.
func DecodeBatchAck(payload []byte) (*BatchAck, error) {
	r := bits.NewReader(payload, len(payload)*8)
	var a BatchAck
	q, err := r.ReadVar()
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadPayload, err)
	}
	p, err := r.ReadVar()
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadPayload, err)
	}
	a.Queued, a.Pending = int(q), int(p)
	if a.ElapsedNanos, err = r.ReadVar(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadPayload, err)
	}
	has, err := r.ReadBit()
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadPayload, err)
	}
	if has {
		if a.Report, err = readReport(r, len(payload)); err != nil {
			return nil, err
		}
	}
	return &a, nil
}

// EncodeEvent encodes one watch event (a versioned session report) as a
// complete frame.
func EncodeEvent(version uint64, rep *Report) ([]byte, error) {
	return encodeFrame(KindEvent, func(w *bits.Writer) error {
		if err := w.WriteVar(version); err != nil {
			return err
		}
		return writeReport(w, rep)
	})
}

// DecodeEvent decodes a watch-event payload.
func DecodeEvent(payload []byte) (uint64, *Report, error) {
	r := bits.NewReader(payload, len(payload)*8)
	version, err := r.ReadVar()
	if err != nil {
		return 0, nil, fmt.Errorf("%w: %v", ErrBadPayload, err)
	}
	rep, err := readReport(r, len(payload))
	if err != nil {
		return 0, nil, err
	}
	return version, rep, nil
}

// EncodeHello encodes the watch-stream opening frame.
func EncodeHello(h Hello) ([]byte, error) {
	return encodeFrame(KindHello, func(w *bits.Writer) error {
		if err := w.WriteVar(h.Subscription); err != nil {
			return err
		}
		if err := w.WriteVar(h.Version); err != nil {
			return err
		}
		if err := w.WriteVar(h.ResumeFrom); err != nil {
			return err
		}
		w.WriteBit(h.Reset)
		return nil
	})
}

// DecodeHello decodes a hello payload.
func DecodeHello(payload []byte) (Hello, error) {
	r := bits.NewReader(payload, len(payload)*8)
	var h Hello
	var err error
	if h.Subscription, err = r.ReadVar(); err != nil {
		return h, fmt.Errorf("%w: %v", ErrBadPayload, err)
	}
	if h.Version, err = r.ReadVar(); err != nil {
		return h, fmt.Errorf("%w: %v", ErrBadPayload, err)
	}
	if h.ResumeFrom, err = r.ReadVar(); err != nil {
		return h, fmt.Errorf("%w: %v", ErrBadPayload, err)
	}
	if h.Reset, err = r.ReadBit(); err != nil {
		return h, fmt.Errorf("%w: %v", ErrBadPayload, err)
	}
	return h, nil
}

// EncodeAck encodes a subscription acknowledgement frame: the client
// has applied every event up to and including version.
func EncodeAck(sub, version uint64) ([]byte, error) {
	return encodeFrame(KindAck, func(w *bits.Writer) error {
		if err := w.WriteVar(sub); err != nil {
			return err
		}
		return w.WriteVar(version)
	})
}

// DecodeAck decodes an ack payload.
func DecodeAck(payload []byte) (sub, version uint64, err error) {
	r := bits.NewReader(payload, len(payload)*8)
	if sub, err = r.ReadVar(); err != nil {
		return 0, 0, fmt.Errorf("%w: %v", ErrBadPayload, err)
	}
	if version, err = r.ReadVar(); err != nil {
		return 0, 0, fmt.Errorf("%w: %v", ErrBadPayload, err)
	}
	return sub, version, nil
}

// EncodeNack encodes a subscription rejection frame: the client could
// not apply the event at version; replay after reconnect restarts
// before it.
func EncodeNack(sub, version uint64, reason string) ([]byte, error) {
	return encodeFrame(KindNack, func(w *bits.Writer) error {
		if err := w.WriteVar(sub); err != nil {
			return err
		}
		if err := w.WriteVar(version); err != nil {
			return err
		}
		return writeString(w, reason)
	})
}

// DecodeNack decodes a nack payload.
func DecodeNack(payload []byte) (sub, version uint64, reason string, err error) {
	r := bits.NewReader(payload, len(payload)*8)
	if sub, err = r.ReadVar(); err != nil {
		return 0, 0, "", fmt.Errorf("%w: %v", ErrBadPayload, err)
	}
	if version, err = r.ReadVar(); err != nil {
		return 0, 0, "", fmt.Errorf("%w: %v", ErrBadPayload, err)
	}
	if reason, err = readString(r, len(payload)); err != nil {
		return 0, 0, "", fmt.Errorf("%w: %v", ErrBadPayload, err)
	}
	return sub, version, reason, nil
}

// EncodeError encodes a failure frame carrying an HTTP-style status
// code and a message.
func EncodeError(code int, msg string) ([]byte, error) {
	return encodeFrame(KindError, func(w *bits.Writer) error {
		if err := writeNonNeg(w, code, "code"); err != nil {
			return err
		}
		return writeString(w, msg)
	})
}

// DecodeError decodes an error payload.
func DecodeError(payload []byte) (code int, msg string, err error) {
	r := bits.NewReader(payload, len(payload)*8)
	c, err := r.ReadVar()
	if err != nil {
		return 0, "", fmt.Errorf("%w: %v", ErrBadPayload, err)
	}
	if msg, err = readString(r, len(payload)); err != nil {
		return 0, "", fmt.Errorf("%w: %v", ErrBadPayload, err)
	}
	return int(c), msg, nil
}

// writeReport encodes a session report record. Field order is part of
// the frozen format; see the golden tests.
func writeReport(w *bits.Writer, rep *Report) error {
	if err := w.WriteVar(rep.Generation); err != nil {
		return err
	}
	if err := writeString(w, rep.Mode); err != nil {
		return err
	}
	if err := writeString(w, rep.ActiveScheme); err != nil {
		return err
	}
	if err := writeNonNeg(w, rep.Updates, "updates"); err != nil {
		return err
	}
	if err := writeNonNeg(w, rep.Dirty, "dirty"); err != nil {
		return err
	}
	if err := writeNonNeg(w, rep.Verified, "verified"); err != nil {
		return err
	}
	w.WriteBit(rep.FullVerify)
	w.WriteBit(rep.Accepted)
	if err := w.WriteVar(rep.CacheGeneration); err != nil {
		return err
	}
	if err := writeString(w, rep.RepairFallback); err != nil {
		return err
	}
	if err := writeString(w, rep.ProveErr); err != nil {
		return err
	}
	w.WriteBit(rep.Verification != nil)
	if rep.Verification == nil {
		return nil
	}
	v := rep.Verification
	w.WriteBit(v.Accepted)
	if err := writeNonNeg(w, v.MaxCertBits, "max_cert_bits"); err != nil {
		return err
	}
	if err := w.WriteUint(math.Float64bits(v.AvgCertBits), 64); err != nil {
		return err
	}
	if err := writeNonNeg(w, v.Messages, "messages"); err != nil {
		return err
	}
	if err := writeNonNeg(w, v.MaxMsgBits, "max_msg_bits"); err != nil {
		return err
	}
	if err := w.WriteVar(uint64(len(v.Rejecting))); err != nil {
		return err
	}
	for _, id := range v.Rejecting {
		if err := w.WriteVarInt(id); err != nil {
			return err
		}
	}
	if !sortedReasons(v.Reasons) {
		return fmt.Errorf("wire: verification reasons not sorted by id")
	}
	if err := w.WriteVar(uint64(len(v.Reasons))); err != nil {
		return err
	}
	for _, rs := range v.Reasons {
		if err := w.WriteVarInt(rs.ID); err != nil {
			return err
		}
		if err := writeString(w, rs.Text); err != nil {
			return err
		}
	}
	return nil
}

// sortedReasons reports whether the reasons are in strictly increasing
// ID order (the deterministic encoding the format freezes).
func sortedReasons(rs []Reason) bool {
	for i := 1; i < len(rs); i++ {
		if rs[i-1].ID >= rs[i].ID {
			return false
		}
	}
	return true
}

// readReport decodes a session report record. limit bounds list sizes
// against the payload length so corrupt counts cannot allocate wildly.
func readReport(r *bits.Reader, limit int) (*Report, error) {
	var rep Report
	var err error
	fail := func(err error) (*Report, error) {
		return nil, fmt.Errorf("%w: %v", ErrBadPayload, err)
	}
	if rep.Generation, err = r.ReadVar(); err != nil {
		return fail(err)
	}
	if rep.Mode, err = readString(r, limit); err != nil {
		return fail(err)
	}
	if rep.ActiveScheme, err = readString(r, limit); err != nil {
		return fail(err)
	}
	var u uint64
	if u, err = r.ReadVar(); err != nil {
		return fail(err)
	}
	rep.Updates = int(u)
	if u, err = r.ReadVar(); err != nil {
		return fail(err)
	}
	rep.Dirty = int(u)
	if u, err = r.ReadVar(); err != nil {
		return fail(err)
	}
	rep.Verified = int(u)
	if rep.FullVerify, err = r.ReadBit(); err != nil {
		return fail(err)
	}
	if rep.Accepted, err = r.ReadBit(); err != nil {
		return fail(err)
	}
	if rep.CacheGeneration, err = r.ReadVar(); err != nil {
		return fail(err)
	}
	if rep.RepairFallback, err = readString(r, limit); err != nil {
		return fail(err)
	}
	if rep.ProveErr, err = readString(r, limit); err != nil {
		return fail(err)
	}
	has, err := r.ReadBit()
	if err != nil {
		return fail(err)
	}
	if !has {
		return &rep, nil
	}
	var v Verification
	if v.Accepted, err = r.ReadBit(); err != nil {
		return fail(err)
	}
	if u, err = r.ReadVar(); err != nil {
		return fail(err)
	}
	v.MaxCertBits = int(u)
	if u, err = r.ReadUint(64); err != nil {
		return fail(err)
	}
	v.AvgCertBits = math.Float64frombits(u)
	if u, err = r.ReadVar(); err != nil {
		return fail(err)
	}
	v.Messages = int(u)
	if u, err = r.ReadVar(); err != nil {
		return fail(err)
	}
	v.MaxMsgBits = int(u)
	n, err := r.ReadVar()
	if err != nil {
		return fail(err)
	}
	// Every list entry costs at least 6 bits; 2x the payload byte count
	// over-approximates the densest possible packing.
	if n > uint64(2*limit) {
		return nil, fmt.Errorf("%w: rejecting count %d exceeds payload", ErrBadPayload, n)
	}
	if n > 0 {
		v.Rejecting = make([]int64, n)
		for i := range v.Rejecting {
			if v.Rejecting[i], err = r.ReadVarInt(); err != nil {
				return fail(err)
			}
		}
	}
	if n, err = r.ReadVar(); err != nil {
		return fail(err)
	}
	if n > uint64(2*limit) {
		return nil, fmt.Errorf("%w: reason count %d exceeds payload", ErrBadPayload, n)
	}
	if n > 0 {
		v.Reasons = make([]Reason, n)
		for i := range v.Reasons {
			if v.Reasons[i].ID, err = r.ReadVarInt(); err != nil {
				return fail(err)
			}
			if v.Reasons[i].Text, err = readString(r, limit); err != nil {
				return fail(err)
			}
		}
	}
	rep.Verification = &v
	return &rep, nil
}
