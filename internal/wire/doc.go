// Package wire implements planarcertd's binary wire protocol: a
// length-prefixed, CRC-checked frame format for update batches and
// watch streams, hand-rolled with no dependencies beyond the standard
// library and internal/bits.
//
// # Frame layout
//
// Every frame is a fixed 14-byte header followed by a payload:
//
//	offset  size  field
//	0       4     magic "PCWF"
//	4       1     format version (currently 1)
//	5       1     frame kind (KindUpdateBatch .. KindError)
//	6       4     payload length, uint32 little-endian (<= MaxPayload)
//	10      4     CRC32 (IEEE) of the payload, uint32 little-endian
//	14      len   payload
//
// Payloads are MSB-first bit streams written with internal/bits: update
// records pack their op into 2 bits and their node identifiers as
// zigzag varints (bits.WriteVarInt), so a steady add_edge costs ~3
// bytes against ~30 for its NDJSON line. Strings are a varint byte
// length followed by raw bytes; float64 fields are their IEEE-754 bits
// in a fixed 64-bit field.
//
// # Frozen format
//
// The byte format is FROZEN the way internal/wal's on-disk records are:
// golden-bytes tests pin the exact encoding of every frame kind, and
// internal refactors must not change any byte on the wire. Format
// evolution bumps the header version byte and keeps decoding version 1.
//
// # Zero-copy decode
//
// DecodeUpdateBatch parses into a pooled Scratch slab (the transport
// extension of the dist.Scratch discipline): the returned []Update
// aliases the scratch and a steady-state batch decode performs no
// allocations at all. ParseFrame and Reader.Next alias the input buffer
// rather than copying payloads.
package wire
