// Package interactive implements the distributed interactive-proof
// baseline that the paper improves on: a dMAM (Merlin–Arthur–Merlin)
// protocol for planarity in the style of Naor, Parter and Yogev (SODA
// 2020), with O(log n)-bit messages, one random challenge, and soundness
// error O(n / 2^61).
//
// The NPY compiler itself (which certifies the execution of an arbitrary
// sequential algorithm) has no public implementation and compiles RAM
// programs; this package substitutes the closest protocol with the same
// interface costs: Merlin commits to the Theorem 1 structure WITHOUT the
// deterministic subtree-size counters, Arthur broadcasts a random field
// element z, and Merlin answers with subtree-aggregated polynomial
// fingerprints that certify that the DFS ranks partition {1,...,2n-1} —
// the permutation-consistency primitive at the heart of the NPY
// construction.
package interactive

import "math/bits"

// P is the field modulus 2^61 - 1 (a Mersenne prime), so products of
// reduced elements fit in 122 bits and reduce cheaply.
const P uint64 = (1 << 61) - 1

// Add returns a + b mod P.
func Add(a, b uint64) uint64 {
	s := a + b
	if s >= P {
		s -= P
	}
	return s
}

// Sub returns a - b mod P.
func Sub(a, b uint64) uint64 {
	if a >= b {
		return a - b
	}
	return a + P - b
}

// Mul returns a * b mod P using 128-bit intermediate arithmetic and
// Mersenne reduction.
func Mul(a, b uint64) uint64 {
	hi, lo := bits.Mul64(a, b)
	// a*b = hi*2^64 + lo; 2^64 = 8 mod P (since 2^61 = 1 mod P).
	// Split lo into low 61 bits and the 3-bit overflow.
	low := lo & P
	rest := hi<<3 | lo>>61 // (hi*2^64 + lo) >> 61
	res := low + rest
	for res >= P {
		res = (res & P) + (res >> 61)
	}
	if res == P {
		res = 0
	}
	return res
}

// RangeProduct returns prod_{r=lo}^{hi} (z - r) mod P.
func RangeProduct(z uint64, lo, hi int) uint64 {
	acc := uint64(1)
	for r := lo; r <= hi; r++ {
		acc = Mul(acc, Sub(z%P, uint64(r)%P))
	}
	return acc
}

// MultisetProduct returns prod_{r in ranks} (z - r) mod P.
func MultisetProduct(z uint64, ranks []int) uint64 {
	acc := uint64(1)
	for _, r := range ranks {
		acc = Mul(acc, Sub(z%P, uint64(r)%P))
	}
	return acc
}
