package interactive

import (
	"fmt"
	"math/rand"

	"github.com/planarcert/planarcert/internal/bits"
	"github.com/planarcert/planarcert/internal/core"
	"github.com/planarcert/planarcert/internal/dist"
	"github.com/planarcert/planarcert/internal/graph"
	"github.com/planarcert/planarcert/internal/pls"
)

// View is the information available to one node at the end of a dMAM
// execution: the shared challenge, its two certificates, and both
// certificates of every neighbor.
type View struct {
	ID        graph.ID
	Degree    int
	Challenge uint64
	First     bits.Certificate
	Second    bits.Certificate
	Neighbors []NeighborView
}

// NeighborView carries one neighbor's certificates.
type NeighborView struct {
	ID     graph.ID
	First  bits.Certificate
	Second bits.Certificate
}

// Protocol is a three-interaction dMAM protocol: Merlin speaks, Arthur
// challenges with shared randomness, Merlin answers, then one round of
// local verification.
type Protocol interface {
	Name() string
	// Merlin1 commits to the structure (before seeing the challenge).
	Merlin1(g *graph.Graph) (map[graph.ID]bits.Certificate, error)
	// Merlin2 answers the challenge.
	Merlin2(g *graph.Graph, challenge uint64) (map[graph.ID]bits.Certificate, error)
	// Verify is each node's local decision.
	Verify(view View) error
}

// Stats summarises a dMAM execution for the comparison experiments.
type Stats struct {
	Interactions int     // prover/verifier alternations (always 3)
	RandomBits   int     // shared random bits drawn by Arthur
	MaxCertBit   int     // largest single certificate (either message)
	SoundnessErr float64 // upper bound n2 / P on the fingerprint error
	Outcome      *dist.Outcome
}

// Run executes proto honestly: Merlin1, a uniform challenge from rng,
// Merlin2, then the verification round.
func Run(proto Protocol, g *graph.Graph, rng *rand.Rand) (*Stats, error) {
	m1, err := proto.Merlin1(g)
	if err != nil {
		return nil, fmt.Errorf("%s merlin1: %w", proto.Name(), err)
	}
	challenge := rng.Uint64() % P
	m2, err := proto.Merlin2(g, challenge)
	if err != nil {
		return nil, fmt.Errorf("%s merlin2: %w", proto.Name(), err)
	}
	return RunWithMessages(proto, g, challenge, m1, m2), nil
}

// RunWithMessages executes the verification round against arbitrary
// (possibly adversarial) Merlin messages.
func RunWithMessages(proto Protocol, g *graph.Graph, challenge uint64,
	m1, m2 map[graph.ID]bits.Certificate) *Stats {
	st := &Stats{
		Interactions: 3,
		RandomBits:   61,
		SoundnessErr: float64(2*g.N()) / float64(P),
	}
	for _, m := range []map[graph.ID]bits.Certificate{m1, m2} {
		for _, c := range m {
			if c.Bits > st.MaxCertBit {
				st.MaxCertBit = c.Bits
			}
		}
	}
	// Both certificates travel together in the verification round.
	combined := make(map[graph.ID]bits.Certificate, g.N())
	for u := 0; u < g.N(); u++ {
		id := g.IDOf(u)
		var w bits.Writer
		c1, c2 := m1[id], m2[id]
		// Length-prefixed concatenation so the verifier can split.
		if err := w.WriteVar(uint64(c1.Bits)); err != nil {
			continue
		}
		r1 := c1.Reader()
		for i := 0; i < c1.Bits; i++ {
			b, _ := r1.ReadBit()
			w.WriteBit(b)
		}
		r2 := c2.Reader()
		for i := 0; i < c2.Bits; i++ {
			b, _ := r2.ReadBit()
			w.WriteBit(b)
		}
		combined[id] = bits.FromWriter(&w)
	}
	split := func(c bits.Certificate) (bits.Certificate, bits.Certificate, error) {
		r := c.Reader()
		l1, err := r.ReadVar()
		if err != nil {
			return bits.Certificate{}, bits.Certificate{}, err
		}
		var w1, w2 bits.Writer
		for i := uint64(0); i < l1; i++ {
			b, err := r.ReadBit()
			if err != nil {
				return bits.Certificate{}, bits.Certificate{}, err
			}
			w1.WriteBit(b)
		}
		for r.Remaining() > 0 {
			b, err := r.ReadBit()
			if err != nil {
				return bits.Certificate{}, bits.Certificate{}, err
			}
			w2.WriteBit(b)
		}
		return bits.FromWriter(&w1), bits.FromWriter(&w2), nil
	}
	st.Outcome = dist.RunPLS(g, combined, func(v dist.View) error {
		first, second, err := split(v.Cert)
		if err != nil {
			return err
		}
		iv := View{
			ID:        v.ID,
			Degree:    v.Degree,
			Challenge: challenge,
			First:     first,
			Second:    second,
		}
		for _, nb := range v.Neighbors {
			f, s, err := split(nb.Cert)
			if err != nil {
				return err
			}
			iv.Neighbors = append(iv.Neighbors, NeighborView{ID: nb.ID, First: f, Second: s})
		}
		return proto.Verify(iv)
	})
	return st
}

// PlanarityDMAM is the dMAM baseline for planarity. Merlin1 sends the
// Theorem 1 certificates (whose size counters the verifier will ignore);
// Merlin2 sends, for each node, the fingerprint of the DFS ranks of its
// subtree at the challenge point. Verification: Algorithm 2 without
// counters, plus the telescoping product check, plus the root's
// comparison against prod_{r=1}^{2n-1} (z - r).
type PlanarityDMAM struct{}

// Name implements Protocol.
func (PlanarityDMAM) Name() string { return "planarity-dMAM" }

// Merlin1 implements Protocol.
func (PlanarityDMAM) Merlin1(g *graph.Graph) (map[graph.ID]bits.Certificate, error) {
	return core.PlanarScheme{}.Prove(g)
}

// Merlin2 implements Protocol.
func (PlanarityDMAM) Merlin2(g *graph.Graph, challenge uint64) (map[graph.ID]bits.Certificate, error) {
	tr, err := core.TransformOf(g)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", pls.ErrNotInClass, err)
	}
	// Subtree fingerprint per node, bottom-up over the DFS tree.
	fp := make([]uint64, g.N())
	var compute func(v int) uint64
	compute = func(v int) uint64 {
		acc := MultisetProduct(challenge, tr.Copies[v])
		for _, c := range tr.ChildOrder[v] {
			acc = Mul(acc, compute(c))
		}
		fp[v] = acc
		return acc
	}
	compute(tr.Root)
	out := make(map[graph.ID]bits.Certificate, g.N())
	for v := 0; v < g.N(); v++ {
		var w bits.Writer
		if err := w.WriteUint(fp[v], 61); err != nil {
			return nil, err
		}
		out[g.IDOf(v)] = bits.FromWriter(&w)
	}
	return out, nil
}

// Verify implements Protocol.
func (PlanarityDMAM) Verify(view View) error {
	// Algorithm 2 without the deterministic counters.
	st, err := core.VerifyPlanarNoCounters(dist.View{
		ID:     view.ID,
		Degree: view.Degree,
		Cert:   view.First,
		Neighbors: func() []dist.NeighborCert {
			out := make([]dist.NeighborCert, 0, len(view.Neighbors))
			for _, nb := range view.Neighbors {
				out = append(out, dist.NeighborCert{ID: nb.ID, Cert: nb.First})
			}
			return out
		}(),
	})
	if err != nil {
		return err
	}
	self, err := core.DecodePlanarCert(view.First.Reader())
	if err != nil {
		return err
	}
	myFP, err := view.Second.Reader().ReadUint(61)
	if err != nil {
		return err
	}
	// Telescoping: my fingerprint = (my local product) * (children's
	// fingerprints).
	want := MultisetProduct(view.Challenge, st.MyCopies)
	for _, nb := range view.Neighbors {
		nc, err := core.DecodePlanarCert(nb.First.Reader())
		if err != nil {
			return err
		}
		if nc.Tree.Parent == view.ID && nc.Tree.Dist == self.Tree.Dist+1 {
			childFP, err := nb.Second.Reader().ReadUint(61)
			if err != nil {
				return err
			}
			want = Mul(want, childFP)
		}
	}
	if myFP != want {
		return fmt.Errorf("interactive: fingerprint mismatch at node %d", view.ID)
	}
	// Root: the aggregate must equal prod_{r=1}^{2n-1} (z - r).
	if self.Tree.Dist == 0 {
		target := RangeProduct(view.Challenge, 1, st.N2)
		if myFP != target {
			return fmt.Errorf("interactive: root fingerprint does not match {1..%d}", st.N2)
		}
	}
	return nil
}

var _ Protocol = PlanarityDMAM{}
