package interactive_test

import (
	"math/rand"
	"testing"

	"github.com/planarcert/planarcert/internal/bits"
	"github.com/planarcert/planarcert/internal/gen"
	"github.com/planarcert/planarcert/internal/graph"
	"github.com/planarcert/planarcert/internal/interactive"
)

func TestFieldArithmetic(t *testing.T) {
	p := interactive.P
	if interactive.Add(p-1, 1) != 0 {
		t.Fatal("Add wraparound")
	}
	if interactive.Sub(0, 1) != p-1 {
		t.Fatal("Sub wraparound")
	}
	if interactive.Mul(1, p-1) != p-1 {
		t.Fatal("Mul identity")
	}
	// (p-1)^2 = p^2 - 2p + 1 = 1 mod p.
	if interactive.Mul(p-1, p-1) != 1 {
		t.Fatalf("Mul((p-1)^2) = %d, want 1", interactive.Mul(p-1, p-1))
	}
	// Cross-check against big-number arithmetic on random values.
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 2000; i++ {
		a := rng.Uint64() % p
		b := rng.Uint64() % p
		want := slowMul(a, b, p)
		if got := interactive.Mul(a, b); got != want {
			t.Fatalf("Mul(%d,%d) = %d, want %d", a, b, got, want)
		}
	}
}

// slowMul computes a*b mod p by splitting b into 32-bit halves.
func slowMul(a, b, p uint64) uint64 {
	bHi, bLo := b>>32, b&0xffffffff
	// a*b = a*bHi*2^32 + a*bLo, computed with mod-reductions via big shifts.
	res := mulShift(a, bHi, 32, p)
	res = (res + mulmod64(a, bLo, p)) % p
	return res
}

func mulShift(a, b, shift uint64, p uint64) uint64 {
	r := mulmod64(a, b, p)
	for i := uint64(0); i < shift; i++ {
		r = (r * 2) % p
	}
	return r
}

// mulmod64 multiplies two < 2^61 values whose product of (a mod p)*(b<2^32)
// fits in uint64 after reduction steps — use simple double-and-add.
func mulmod64(a, b, p uint64) uint64 {
	a %= p
	var res uint64
	for b > 0 {
		if b&1 == 1 {
			res = (res + a) % p
		}
		a = (a * 2) % p
		b >>= 1
	}
	return res
}

func TestRangeAndMultisetProducts(t *testing.T) {
	z := uint64(1000)
	if interactive.RangeProduct(z, 1, 3) != interactive.MultisetProduct(z, []int{3, 1, 2}) {
		t.Fatal("range product != multiset product of the same set")
	}
	if interactive.MultisetProduct(z, []int{1, 2}) == interactive.MultisetProduct(z, []int{1, 3}) {
		t.Fatal("different multisets collide at a fixed point (wildly unlikely)")
	}
	if interactive.RangeProduct(z, 5, 4) != 1 {
		t.Fatal("empty range product != 1")
	}
}

func TestDMAMCompleteness(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	graphs := []*graph.Graph{
		gen.Path(8),
		gen.Cycle(9),
		gen.Grid(4, 4),
		gen.Wheel(10),
		gen.StackedTriangulation(30, rng),
	}
	for i, g := range graphs {
		st, err := interactive.Run(interactive.PlanarityDMAM{}, g, rng)
		if err != nil {
			t.Fatalf("graph %d: %v", i, err)
		}
		if !st.Outcome.AllAccept() {
			t.Fatalf("graph %d rejected: %v", i, st.Outcome.Reasons)
		}
		if st.Interactions != 3 || st.RandomBits != 61 {
			t.Fatalf("stats: %+v", st)
		}
	}
}

func TestDMAMProverRejectsNonPlanar(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	if _, err := interactive.Run(interactive.PlanarityDMAM{}, gen.Complete(5), rng); err == nil {
		t.Fatal("Merlin produced messages for K5")
	}
}

// TestDMAMSoundnessForgedFingerprints checks that cheating on the rank
// partition is caught for almost every challenge: the prover claims a
// wrong copy multiset by shifting one node's fingerprint contribution.
func TestDMAMSoundnessForgedFingerprints(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	g := gen.Grid(3, 3)
	proto := interactive.PlanarityDMAM{}
	m1, err := proto.Merlin1(g)
	if err != nil {
		t.Fatal(err)
	}
	accepted := 0
	const trials = 50
	for trial := 0; trial < trials; trial++ {
		challenge := rng.Uint64() % interactive.P
		m2, err := proto.Merlin2(g, challenge)
		if err != nil {
			t.Fatal(err)
		}
		// Corrupt one leaf's fingerprint to the product of a WRONG multiset
		// (ranks shifted by one) — and fix up nothing else: the telescoping
		// check at its parent must fail.
		var victim graph.ID = g.IDOf(g.N() - 1)
		var w bits.Writer
		if err := w.WriteUint(interactive.MultisetProduct(challenge, []int{2}), 61); err != nil {
			t.Fatal(err)
		}
		m2[victim] = bits.FromWriter(&w)
		st := interactive.RunWithMessages(proto, g, challenge, m1, m2)
		if st.Outcome.AllAccept() {
			accepted++
		}
	}
	if accepted > 0 {
		// A collision would require MultisetProduct hitting the exact honest
		// value — probability ~ trials * n / P.
		t.Fatalf("forged fingerprints accepted %d/%d times", accepted, trials)
	}
}

func TestDMAMSoundnessWrongPartition(t *testing.T) {
	// A global forgery: Merlin's second message claims the rank multiset
	// {2..2n} instead of {1..2n-1}, with internally consistent
	// aggregation. The local product / telescoping checks and the root's
	// range-product comparison must reject for every challenge (up to
	// fingerprint collisions, probability ~ n/P).
	rng := rand.New(rand.NewSource(5))
	g := gen.Path(4)
	proto := interactive.PlanarityDMAM{}
	m1, err := proto.Merlin1(g)
	if err != nil {
		t.Fatal(err)
	}
	rejected := 0
	const trials = 30
	for trial := 0; trial < trials; trial++ {
		challenge := rng.Uint64() % interactive.P
		// Build self-consistent fingerprints for the WRONG multiset where
		// every node pretends its ranks are shifted into {2..2n}.
		fake := make(map[graph.ID]bits.Certificate, g.N())
		// Honest copies for path rooted at 0: node v has copies spanning a
		// contiguous range; recompute shifted fingerprints bottom-up.
		// Node 3 (leaf): copies {4}? Honest DFS: 0:[1,7], 1:[2,6], 2:[3,5], 3:[4].
		shifted := map[graph.ID][]int{
			0: {2, 8}, 1: {3, 7}, 2: {4, 6}, 3: {5},
		}
		fpOf := make(map[graph.ID]uint64, 4)
		for v := 3; v >= 0; v-- {
			acc := interactive.MultisetProduct(challenge, shifted[graph.ID(v)])
			if v < 3 {
				acc = interactive.Mul(acc, fpOf[graph.ID(v+1)])
			}
			fpOf[graph.ID(v)] = acc
			var w bits.Writer
			if err := w.WriteUint(acc, 61); err != nil {
				t.Fatal(err)
			}
			fake[graph.ID(v)] = bits.FromWriter(&w)
		}
		st := interactive.RunWithMessages(proto, g, challenge, m1, fake)
		if !st.Outcome.AllAccept() {
			rejected++
		}
	}
	if rejected != trials {
		t.Fatalf("wrong partition rejected only %d/%d times", rejected, trials)
	}
}

func TestDMAMStatsComparison(t *testing.T) {
	// The headline comparison of the paper: dMAM uses 3 interactions and
	// randomness; the PLS uses 1 and none — at comparable certificate
	// size. Here we pin the dMAM side.
	rng := rand.New(rand.NewSource(6))
	g := gen.StackedTriangulation(64, rng)
	st, err := interactive.Run(interactive.PlanarityDMAM{}, g, rng)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Outcome.AllAccept() {
		t.Fatal("rejected")
	}
	if st.SoundnessErr <= 0 || st.SoundnessErr > 1e-10 {
		t.Fatalf("soundness error estimate %v out of range", st.SoundnessErr)
	}
}
