package planarcert_test

import (
	"encoding/json"
	"os"
	"strings"
	"testing"
)

// TestBenchSnapshotsWellFormed guards the committed benchmark
// snapshots: CI regenerates the dynamic sweep and uploads it as an
// artifact, and this test keeps the committed files parseable and
// structurally complete so the regeneration check has a baseline to
// diff against.
func TestBenchSnapshotsWellFormed(t *testing.T) {
	type entry struct {
		Name          string  `json:"name"`
		NsPerOp       int64   `json:"ns_per_op"`
		AllocsPerOp   int64   `json:"allocs_per_op"`
		NodesPerS     float64 `json:"nodes_per_s"`
		AllocsPerNode float64 `json:"allocs_per_node"`
	}
	type snapshot struct {
		Note       string  `json:"note"`
		Date       string  `json:"date"`
		Sessions   int     `json:"sessions"`
		Benchmarks []entry `json:"benchmarks"`
	}
	for file, want := range map[string][]string{
		"BENCH_baseline.json": {"BenchmarkEngineParallel", "BenchmarkEngineOverhead"},
		"BENCH_dynamic.json": {
			"BenchmarkDynamicUpdate/n=50000/session",
			"BenchmarkDynamicUpdate/n=50000/full",
			"BenchmarkDynamicCacheOscillation",
		},
		"BENCH_server.json": {
			"ServerLoad/sessions=64/batch",
			"ServerLoad/sessions=64/update",
			"ServerLoad/mode=",
			"ServerLoad/wire=",
		},
		"BENCH_obs.json": {
			"TraceBench/tracing=off/batch",
			"TraceBench/tracing=on/batch",
		},
		"BENCH_recovery.json": {
			"Recovery/n=50000/replay",
			"Recovery/n=50000/crash_replay",
			"Recovery/n=50000/reprove",
		},
	} {
		raw, err := os.ReadFile(file)
		if err != nil {
			t.Fatalf("%s: %v", file, err)
		}
		var snap snapshot
		if err := json.Unmarshal(raw, &snap); err != nil {
			t.Fatalf("%s: not valid JSON: %v", file, err)
		}
		if snap.Note == "" || snap.Date == "" || len(snap.Benchmarks) == 0 {
			t.Fatalf("%s: missing note/date/benchmarks", file)
		}
		for _, prefix := range want {
			found := false
			for _, b := range snap.Benchmarks {
				if strings.HasPrefix(b.Name, prefix) {
					if b.NsPerOp <= 0 {
						t.Fatalf("%s: %s has non-positive ns_per_op", file, b.Name)
					}
					found = true
				}
			}
			if !found {
				t.Fatalf("%s: no benchmark entry matching %q", file, prefix)
			}
		}
	}
	// The acceptance bars of the allocation-free verification hot path,
	// checked against the committed engine snapshot: every sweep size
	// stays at or under 10 allocations per node (the seed ran ~96), and
	// throughput is near-flat across the n-sweep — nodes/s at n=16384 is
	// at least 0.8x nodes/s at n=64 in the same mode (certificates are
	// Θ(log n) bits, so decode cost per node may grow only gently).
	raw0, err := os.ReadFile("BENCH_baseline.json")
	if err != nil {
		t.Fatal(err)
	}
	var base snapshot
	if err := json.Unmarshal(raw0, &base); err != nil {
		t.Fatal(err)
	}
	perNodeBars := map[string]float64{}
	for _, b := range base.Benchmarks {
		if !strings.HasPrefix(b.Name, "BenchmarkEngineParallel/") {
			continue
		}
		if b.AllocsPerNode > 10 {
			t.Errorf("BENCH_baseline.json: %s spends %.2f allocs/node, bar is 10", b.Name, b.AllocsPerNode)
		}
		if b.NodesPerS <= 0 {
			t.Errorf("BENCH_baseline.json: %s missing nodes_per_s", b.Name)
		}
		perNodeBars[b.Name] = b.NodesPerS
	}
	for _, mode := range []string{"seq", "par"} {
		small := perNodeBars["BenchmarkEngineParallel/n=64/"+mode]
		large := perNodeBars["BenchmarkEngineParallel/n=16384/"+mode]
		if small == 0 || large == 0 {
			t.Fatalf("BENCH_baseline.json: missing the n=64/n=16384 %s pair", mode)
		}
		if large < 0.8*small {
			t.Errorf("BENCH_baseline.json: %s throughput decays across the sweep: n=16384 %.0f nodes/s < 0.8 x n=64 %.0f nodes/s",
				mode, large, small)
		}
	}

	// The acceptance bar of the dynamic subsystem, checked against the
	// committed numbers: a single-edge update at n = 50000 is at least
	// 10x faster than a full re-certification.
	raw, err := os.ReadFile("BENCH_dynamic.json")
	if err != nil {
		t.Fatal(err)
	}
	var snap snapshot
	if err := json.Unmarshal(raw, &snap); err != nil {
		t.Fatal(err)
	}
	var session, full int64
	for _, b := range snap.Benchmarks {
		switch b.Name {
		case "BenchmarkDynamicUpdate/n=50000/session":
			session = b.NsPerOp
		case "BenchmarkDynamicUpdate/n=50000/full":
			full = b.NsPerOp
		}
	}
	if session == 0 || full == 0 {
		t.Fatal("BENCH_dynamic.json: missing the n=50000 pair")
	}
	if full < 10*session {
		t.Fatalf("committed snapshot violates the 10x bar: session %d ns, full %d ns", session, full)
	}

	// The acceptance bar of the server subsystem: the committed load run
	// drove at least 50 concurrent sessions.
	raw, err = os.ReadFile("BENCH_server.json")
	if err != nil {
		t.Fatal(err)
	}
	var srv snapshot
	if err := json.Unmarshal(raw, &srv); err != nil {
		t.Fatal(err)
	}
	if srv.Sessions < 50 {
		t.Fatalf("BENCH_server.json: load run used %d concurrent sessions, want >= 50", srv.Sessions)
	}
	// The acceptance bar of the fair-share admission scheduler: the
	// executed-batch p95 stays within a small multiple of the mean batch
	// cost. Before admission control every batch time-sliced against all
	// 64 sessions and the committed ratio was ~103; fair-share execution
	// keeps the tail at the true service cost of the heaviest mode.
	var batchMean, batchP95 int64
	for _, b := range srv.Benchmarks {
		switch b.Name {
		case "ServerLoad/sessions=64/batch":
			batchMean = b.NsPerOp
		case "ServerLoad/sessions=64/batch_p95":
			batchP95 = b.NsPerOp
		}
	}
	if batchMean == 0 || batchP95 == 0 {
		t.Fatal("BENCH_server.json: missing the sessions=64 batch/batch_p95 pair")
	}
	if ratio := float64(batchP95) / float64(batchMean); ratio > 10.0 {
		t.Fatalf("committed snapshot violates the scheduling bar: batch p95/mean ratio %.1f > 10 (p95 %d ns, mean %d ns)",
			ratio, batchP95, batchMean)
	}
	// The acceptance bars of the binary wire protocol, from the committed
	// queue-mode firehose: fleet update throughput over binary frames must
	// be at least 3x the NDJSON wire and at least 2,500 updates/s outright.
	var wireJSONNs, wireBinNs int64
	for _, b := range srv.Benchmarks {
		switch b.Name {
		case "ServerLoad/wire=json/update":
			wireJSONNs = b.NsPerOp
		case "ServerLoad/wire=binary/update":
			wireBinNs = b.NsPerOp
		}
	}
	if wireJSONNs == 0 || wireBinNs == 0 {
		t.Fatal("BENCH_server.json: missing the wire=json/wire=binary update pair")
	}
	jsonPS := 1e9 / float64(wireJSONNs)
	binPS := 1e9 / float64(wireBinNs)
	if binPS < 3*jsonPS {
		t.Fatalf("committed snapshot violates the wire bar: binary %.0f updates/s < 3 x json %.0f updates/s", binPS, jsonPS)
	}
	if binPS < 2500 {
		t.Fatalf("committed snapshot violates the wire bar: binary %.0f updates/s < 2500/s absolute floor", binPS)
	}

	// The acceptance bar of the durability layer: a clean-shutdown boot
	// restores certificates on the verification sweep alone, so it must
	// beat re-proving the same network from scratch.
	raw, err = os.ReadFile("BENCH_recovery.json")
	if err != nil {
		t.Fatal(err)
	}
	var rec snapshot
	if err := json.Unmarshal(raw, &rec); err != nil {
		t.Fatal(err)
	}
	var replay, reprove int64
	for _, b := range rec.Benchmarks {
		switch b.Name {
		case "Recovery/n=50000/replay":
			replay = b.NsPerOp
		case "Recovery/n=50000/reprove":
			reprove = b.NsPerOp
		}
	}
	if replay == 0 || reprove == 0 {
		t.Fatal("BENCH_recovery.json: missing the n=50000 replay/reprove pair")
	}
	if replay >= reprove {
		t.Fatalf("committed snapshot violates the recovery bar: clean replay %d ns not faster than cold re-prove %d ns", replay, reprove)
	}

	// The acceptance bars of the observability layer: tracing every
	// batch costs at most 5% throughput, and the trace decomposition
	// actually explains the latency tail (one phase accounts for at
	// least half of it — otherwise /debug/traces answers "where did the
	// time go" with a shrug).
	raw, err = os.ReadFile("BENCH_obs.json")
	if err != nil {
		t.Fatal(err)
	}
	var obs struct {
		snapshot
		OverheadPct float64 `json:"overhead_pct"`
		P95         struct {
			DominantPhase    string  `json:"dominant_phase"`
			DominantFraction float64 `json:"dominant_fraction"`
		} `json:"p95_decomposition"`
	}
	if err := json.Unmarshal(raw, &obs); err != nil {
		t.Fatal(err)
	}
	if obs.OverheadPct > 5.0 {
		t.Fatalf("committed snapshot violates the tracing-overhead bar: %.2f%% > 5%%", obs.OverheadPct)
	}
	if obs.P95.DominantPhase == "" || obs.P95.DominantFraction < 0.5 {
		t.Fatalf("committed snapshot violates the attribution bar: dominant phase %q explains only %.0f%% of the tail",
			obs.P95.DominantPhase, 100*obs.P95.DominantFraction)
	}
}
