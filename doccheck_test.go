package planarcert_test

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"strings"
	"testing"
)

// docCheckedDirs are the packages whose exported surface must be fully
// documented: the public API plus the architectural core named in
// ARCHITECTURE.md. CI runs this test as the missing-doc-comment lint
// gate.
var docCheckedDirs = []string{
	".",
	"internal/buildinfo",
	"internal/core",
	"internal/dist",
	"internal/dynamic",
	"internal/graph",
	"internal/obs",
	"internal/qos",
	"internal/server",
	"internal/wal",
	"internal/wire",
}

// TestDocComments is the repo's missing-godoc lint: every exported
// top-level declaration (type, func, method, const/var group) in the
// checked packages needs a doc comment, and every checked package needs
// a package comment.
func TestDocComments(t *testing.T) {
	for _, dir := range docCheckedDirs {
		fset := token.NewFileSet()
		pkgs, err := parser.ParseDir(fset, dir, func(fi fs.FileInfo) bool {
			return !strings.HasSuffix(fi.Name(), "_test.go")
		}, parser.ParseComments)
		if err != nil {
			t.Fatalf("%s: %v", dir, err)
		}
		for _, pkg := range pkgs {
			hasPkgDoc := false
			var missing []string
			for fname, file := range pkg.Files {
				if file.Doc != nil {
					hasPkgDoc = true
				}
				for _, decl := range file.Decls {
					for _, m := range undocumented(decl) {
						missing = append(missing, fmt.Sprintf("%s: %s", fname, m))
					}
				}
			}
			if !hasPkgDoc {
				t.Errorf("package %s (%s) has no package comment", pkg.Name, dir)
			}
			for _, m := range missing {
				t.Errorf("missing doc comment: %s", m)
			}
		}
	}
}

// undocumented returns descriptions of the exported symbols of one
// top-level declaration that lack a doc comment. A documented
// const/var/type group covers its members (idiomatic for enums and
// option groups).
func undocumented(decl ast.Decl) []string {
	var out []string
	switch d := decl.(type) {
	case *ast.FuncDecl:
		if !d.Name.IsExported() {
			return nil
		}
		if receiverUnexported(d) {
			return nil // methods of unexported types are internal detail
		}
		if d.Doc == nil {
			out = append(out, "func "+d.Name.Name)
		}
	case *ast.GenDecl:
		if d.Doc != nil {
			return nil // group comment covers the members
		}
		for _, spec := range d.Specs {
			switch s := spec.(type) {
			case *ast.TypeSpec:
				if s.Name.IsExported() && s.Doc == nil && s.Comment == nil {
					out = append(out, "type "+s.Name.Name)
				}
			case *ast.ValueSpec:
				if s.Doc != nil || s.Comment != nil {
					continue
				}
				for _, name := range s.Names {
					if name.IsExported() {
						out = append(out, fmt.Sprintf("%s %s", d.Tok, name.Name))
					}
				}
			}
		}
	}
	return out
}

// receiverUnexported reports whether fn is a method on an unexported
// receiver type.
func receiverUnexported(fn *ast.FuncDecl) bool {
	if fn.Recv == nil || len(fn.Recv.List) == 0 {
		return false
	}
	t := fn.Recv.List[0].Type
	for {
		switch tt := t.(type) {
		case *ast.StarExpr:
			t = tt.X
		case *ast.IndexExpr: // generic receiver
			t = tt.X
		case *ast.Ident:
			return !tt.IsExported()
		default:
			return false
		}
	}
}
