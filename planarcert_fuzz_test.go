package planarcert_test

import (
	"bytes"
	"testing"

	planarcert "github.com/planarcert/planarcert"
)

// FuzzEdgeListRoundTrip checks ParseEdgeList <-> WriteEdgeList: any
// parseable input must survive a write+reparse with the identical node
// set and adjacency (the two networks are isomorphic on identifiers).
func FuzzEdgeListRoundTrip(f *testing.F) {
	f.Add([]byte("0 1\n1 2\n2 0\n"))
	f.Add([]byte("# comment\n5\n\n3 4\n"))
	f.Add([]byte("-1 -2\n-2 9223372036854775807\n"))
	f.Add([]byte("7\n7 8\n8 7\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<12 {
			t.Skip("bound the parse work")
		}
		net, err := planarcert.ParseEdgeList(bytes.NewReader(data))
		if err != nil {
			t.Skip()
		}
		var buf bytes.Buffer
		if err := net.WriteEdgeList(&buf); err != nil {
			t.Fatalf("write failed on a parsed network: %v", err)
		}
		net2, err := planarcert.ParseEdgeList(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("reparse failed: %v\nwritten:\n%s", err, buf.Bytes())
		}
		if net2.N() != net.N() || net2.M() != net.M() {
			t.Fatalf("round trip changed size: n %d->%d, m %d->%d",
				net.N(), net2.N(), net.M(), net2.M())
		}
		for _, id := range net.IDs() {
			a := net.Neighbors(id)
			b := net2.Neighbors(id)
			if len(a) != len(b) {
				t.Fatalf("node %d: degree %d -> %d", id, len(a), len(b))
			}
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("node %d: neighbors %v -> %v", id, a, b)
				}
			}
		}
	})
}

// FuzzSessionApply drives a Session with an arbitrary update stream on
// a small identifier space and checks the determinism-parity invariant
// after every absorbed batch: the session verifies iff it claims to be
// certified, and a certified state verifies exactly like a fresh
// Certify+Verify of the same graph.
func FuzzSessionApply(f *testing.F) {
	f.Add([]byte{0, 1, 2, 0, 2, 3, 1, 0, 3})
	f.Add([]byte{1, 0, 1, 0, 0, 1, 1, 0, 1, 0, 0, 1})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 240 {
			t.Skip("bound the stream length")
		}
		net := planarcert.NewNetwork()
		const nodes = 8
		for id := planarcert.NodeID(0); id < nodes; id++ {
			if err := net.AddNode(id); err != nil {
				t.Fatal(err)
			}
		}
		for id := planarcert.NodeID(1); id < nodes; id++ {
			if err := net.AddEdge(id-1, id); err != nil {
				t.Fatal(err)
			}
		}
		s, err := planarcert.NewSession(net, planarcert.SchemePlanarity, planarcert.EngineConfig{})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i+2 < len(data); i += 3 {
			a := planarcert.NodeID(data[i+1] % nodes)
			b := planarcert.NodeID(data[i+2] % nodes)
			var u planarcert.Update
			if data[i]%2 == 0 {
				u = planarcert.EdgeAdd(a, b)
			} else {
				u = planarcert.EdgeRemove(a, b)
			}
			if _, err := s.Apply([]planarcert.Update{u}); err != nil {
				continue // structurally invalid update, rejected wholesale
			}
			if got := s.Verify().Accepted; got != s.Certified() {
				t.Fatalf("step %d: Verify=%v but Certified=%v", i, got, s.Certified())
			}
			if s.Certified() {
				fresh, err := planarcert.CertifyAndVerify(s.Network(), s.ActiveScheme())
				if err != nil || !fresh.Accepted {
					t.Fatalf("step %d: fresh %s pipeline disagrees: %v", i, s.ActiveScheme(), err)
				}
			} else if s.N() > 0 && s.Network().Connected() {
				t.Fatalf("step %d: uncertified on a connected graph", i)
			}
		}
	})
}
